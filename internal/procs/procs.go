// Package procs provides the elementary combinatorial substrate of the
// library: process identifiers, process sets as bitsets, and ordered set
// partitions.
//
// Ordered partitions are the central combinatorial object of the paper:
// a one-round immediate-snapshot (IS) run with participating set P is
// exactly an ordered partition of P into concurrency blocks, and a facet
// of the m-th chromatic subdivision Chr^m s is an m-tuple of ordered
// partitions of Π (an m-round IIS run).
package procs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxProcs is the largest supported system size. Sets are 32-bit bitsets;
// the paper's figures use n = 3 and the experiments run n <= 6, so 32 is
// a comfortable ceiling.
const MaxProcs = 32

// ID identifies a process. IDs are 0-based internally; the human-readable
// form follows the paper's convention p1, ..., pn.
type ID uint8

// String returns the paper-style name of the process (p1, p2, ...).
func (p ID) String() string {
	return fmt.Sprintf("p%d", int(p)+1)
}

// Set is a set of processes represented as a bitset. The zero value is
// the empty set and is ready to use.
type Set uint32

// EmptySet is the set with no processes.
const EmptySet Set = 0

// SetOf builds a set from the given process IDs.
func SetOf(ids ...ID) Set {
	var s Set
	for _, id := range ids {
		s = s.Add(id)
	}
	return s
}

// FullSet returns the set {p1, ..., pn}.
func FullSet(n int) Set {
	if n <= 0 {
		return 0
	}
	if n > MaxProcs {
		n = MaxProcs
	}
	return Set((uint64(1) << uint(n)) - 1)
}

// Contains reports whether p is a member of s.
func (s Set) Contains(p ID) bool { return s&(1<<uint(p)) != 0 }

// Add returns s ∪ {p}.
func (s Set) Add(p ID) Set { return s | 1<<uint(p) }

// Remove returns s \ {p}.
func (s Set) Remove(p ID) Set { return s &^ (1 << uint(p)) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Diff returns s \ t.
func (s Set) Diff(t Set) Set { return s &^ t }

// Size returns |s|.
func (s Set) Size() int { return bits.OnesCount32(uint32(s)) }

// IsEmpty reports whether s has no members.
func (s Set) IsEmpty() bool { return s == 0 }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// ProperSubsetOf reports whether s ⊊ t.
func (s Set) ProperSubsetOf(t Set) bool { return s != t && s.SubsetOf(t) }

// Intersects reports whether s ∩ t ≠ ∅.
func (s Set) Intersects(t Set) bool { return s&t != 0 }

// Min returns the smallest process ID in s. ok is false when s is empty.
func (s Set) Min() (id ID, ok bool) {
	if s == 0 {
		return 0, false
	}
	return ID(bits.TrailingZeros32(uint32(s))), true
}

// Members returns the members of s in increasing ID order.
func (s Set) Members() []ID {
	out := make([]ID, 0, s.Size())
	for t := s; t != 0; {
		p := ID(bits.TrailingZeros32(uint32(t)))
		out = append(out, p)
		t = t.Remove(p)
	}
	return out
}

// ForEach calls f for every member of s in increasing ID order.
func (s Set) ForEach(f func(ID)) {
	for t := s; t != 0; {
		p := ID(bits.TrailingZeros32(uint32(t)))
		f(p)
		t = t.Remove(p)
	}
}

// String renders the set in the paper's notation, e.g. {p1,p3}.
func (s Set) String() string {
	if s == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(p ID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(p.String())
	})
	b.WriteByte('}')
	return b.String()
}

// Subsets returns all subsets of s (including ∅ and s itself), in
// increasing bitmask order.
func Subsets(s Set) []Set {
	out := make([]Set, 0, 1<<uint(s.Size()))
	// Standard subset-enumeration trick over a (possibly sparse) mask.
	sub := Set(0)
	for {
		out = append(out, sub)
		if sub == s {
			break
		}
		sub = (sub - s) & s
	}
	return out
}

// NonemptySubsets returns all non-empty subsets of s.
func NonemptySubsets(s Set) []Set {
	all := Subsets(s)
	out := all[:0]
	for _, t := range all {
		if t != 0 {
			out = append(out, t)
		}
	}
	return out
}

// ForEachSubset calls f on every subset of s, including ∅ and s.
// If f returns false the enumeration stops early.
func ForEachSubset(s Set, f func(Set) bool) {
	sub := Set(0)
	for {
		if !f(sub) {
			return
		}
		if sub == s {
			return
		}
		sub = (sub - s) & s
	}
}

// SubsetsOfSize returns all subsets of s with exactly k members.
func SubsetsOfSize(s Set, k int) []Set {
	var out []Set
	ForEachSubset(s, func(t Set) bool {
		if t.Size() == k {
			out = append(out, t)
		}
		return true
	})
	return out
}

// SortSets sorts a slice of sets by (size, bitmask) — a canonical order
// used throughout the library for deterministic output.
func SortSets(sets []Set) {
	sort.Slice(sets, func(i, j int) bool {
		si, sj := sets[i].Size(), sets[j].Size()
		if si != sj {
			return si < sj
		}
		return sets[i] < sets[j]
	})
}
