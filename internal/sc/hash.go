package sc

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Hash returns a deterministic digest of the complex: its color count,
// vertex set (IDs, colors, labels) and simplex set. Two complexes have
// equal hashes iff they are Equal (up to SHA-256 collisions), so the
// digest is usable as a memoization key for iterated subdivisions.
func (c *Complex) Hash() string {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(c.colors))
	h.Write(buf[:])
	for _, id := range c.VertexIDs() {
		v := c.verts[id]
		binary.BigEndian.PutUint32(buf[:4], uint32(id))
		binary.BigEndian.PutUint32(buf[4:], uint32(v.Color))
		h.Write(buf[:])
		h.Write([]byte(v.Label))
		h.Write([]byte{0})
	}
	keys := make([]string, 0, len(c.simplices))
	for k := range c.simplices {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{1})
	}
	return hex.EncodeToString(h.Sum(nil))
}
