package sc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randComplex builds a pseudo-random chromatic complex over up to 4
// colors from a seed: a handful of facets with distinct colors.
func randComplex(seed int64) *Complex {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(3)
	c := NewComplex(n)
	vertsPerColor := 1 + rng.Intn(2)
	id := VertexID(0)
	byColor := make([][]VertexID, n)
	for col := 0; col < n; col++ {
		for k := 0; k < vertsPerColor; k++ {
			_ = c.AddVertex(id, col, "v")
			byColor[col] = append(byColor[col], id)
			id++
		}
	}
	facets := 1 + rng.Intn(4)
	for f := 0; f < facets; f++ {
		var simplex []VertexID
		for col := 0; col < n; col++ {
			if rng.Intn(4) > 0 {
				simplex = append(simplex, byColor[col][rng.Intn(len(byColor[col]))])
			}
		}
		if len(simplex) > 0 {
			_ = c.AddSimplex(simplex...)
		}
	}
	return c
}

// TestQuickClosureIdempotent: Cl(Cl(S)) = Cl(S).
func TestQuickClosureIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		c := randComplex(seed)
		cl := c.Closure(c.Facets())
		cl2 := cl.Closure(cl.Facets())
		return cl.Equal(cl2) && cl.Equal(c.Closure(c.Simplices()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickPureComplementInvariants: Pc(S, c) is a pure sub-complex of c
// avoiding S.
func TestQuickPureComplementInvariants(t *testing.T) {
	f := func(seed int64) bool {
		c := randComplex(seed)
		vids := c.VertexIDs()
		if len(vids) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		banned := []Simplex{NewSimplex(vids[rng.Intn(len(vids))])}
		pc := c.PureComplement(banned)
		if !pc.SubcomplexOf(c) {
			return false
		}
		if pc.NumSimplices() > 0 && !pc.IsPure() {
			return false
		}
		for _, b := range banned {
			if pc.HasSimplex(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickSkeletonDimension: Skel_k has dimension ≤ k and contains
// exactly the simplices of c with dim ≤ k.
func TestQuickSkeletonDimension(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		c := randComplex(seed)
		k := int(kk % 4)
		sk := c.Skeleton(k)
		if sk.Dimension() > k {
			return false
		}
		for _, s := range c.Simplices() {
			has := sk.HasSimplex(s)
			if (s.Dim() <= k) != has {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickStarContainsClosure: every simplex containing a generator is
// in the star; stars grow with the generator set.
func TestQuickStarContains(t *testing.T) {
	f := func(seed int64) bool {
		c := randComplex(seed)
		vids := c.VertexIDs()
		if len(vids) == 0 {
			return true
		}
		g := NewSimplex(vids[0])
		star := c.Star([]Simplex{g})
		count := 0
		for _, s := range c.Simplices() {
			if g.IsFaceOf(s) {
				count++
			}
		}
		return len(star) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickSimplexFaceLattice: faces of faces are faces; union/intersect
// respect the face order.
func TestQuickSimplexFaceLattice(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vs := make([]VertexID, 0, len(raw))
		for _, r := range raw {
			vs = append(vs, VertexID(r%12))
		}
		s := NewSimplex(vs...)
		for _, face := range s.Faces() {
			if !face.IsFaceOf(s) {
				return false
			}
			if !face.Intersect(s).Equal(face) {
				return false
			}
			if !face.Union(s).Equal(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
