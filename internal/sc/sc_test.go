package sc

import (
	"errors"
	"testing"

	"repro/internal/procs"
)

// standard builds the standard (n-1)-simplex s as a complex: vertex i has
// color i.
func standard(t *testing.T, n int) *Complex {
	t.Helper()
	c := NewComplex(n)
	ids := make([]VertexID, n)
	for i := 0; i < n; i++ {
		ids[i] = VertexID(i)
		if err := c.AddVertex(ids[i], i, procs.ID(i).String()); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddSimplex(ids...); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSimplexCanonical(t *testing.T) {
	s := NewSimplex(3, 1, 2, 1)
	if len(s) != 3 || s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Fatalf("NewSimplex not canonical: %v", s)
	}
	if s.Dim() != 2 {
		t.Errorf("Dim = %d", s.Dim())
	}
	if !s.Contains(2) || s.Contains(4) {
		t.Errorf("Contains wrong")
	}
	if !NewSimplex(1, 3).IsFaceOf(s) || NewSimplex(1, 4).IsFaceOf(s) {
		t.Errorf("IsFaceOf wrong")
	}
	if !s.Union(NewSimplex(4)).Equal(NewSimplex(1, 2, 3, 4)) {
		t.Errorf("Union wrong")
	}
	if !s.Intersect(NewSimplex(2, 3, 4)).Equal(NewSimplex(2, 3)) {
		t.Errorf("Intersect wrong")
	}
	if got := len(s.Faces()); got != 7 {
		t.Errorf("Faces count = %d, want 7", got)
	}
}

func TestStandardSimplexStructure(t *testing.T) {
	for n := 1; n <= 5; n++ {
		c := standard(t, n)
		if c.NumVertices() != n {
			t.Errorf("n=%d: vertices = %d", n, c.NumVertices())
		}
		if got, want := c.NumSimplices(), (1<<uint(n))-1; got != want {
			t.Errorf("n=%d: simplices = %d, want %d", n, got, want)
		}
		if c.Dimension() != n-1 {
			t.Errorf("n=%d: dim = %d", n, c.Dimension())
		}
		if !c.IsPure() {
			t.Errorf("n=%d: not pure", n)
		}
		if !c.IsChromatic() {
			t.Errorf("n=%d: not chromatic", n)
		}
		facets := c.Facets()
		if len(facets) != 1 || facets[0].Dim() != n-1 {
			t.Errorf("n=%d: facets wrong: %v", n, facets)
		}
	}
}

func TestAddVertexErrors(t *testing.T) {
	c := NewComplex(2)
	if err := c.AddVertex(0, 5, "x"); !errors.Is(err, ErrColorOutOfRange) {
		t.Errorf("want ErrColorOutOfRange, got %v", err)
	}
	if err := c.AddVertex(0, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddVertex(0, 1, "x"); err != nil {
		t.Errorf("idempotent re-add should succeed: %v", err)
	}
	if err := c.AddVertex(0, 0, "x"); !errors.Is(err, ErrVertexConflict) {
		t.Errorf("want ErrVertexConflict, got %v", err)
	}
	if err := c.AddSimplex(0, 7); !errors.Is(err, ErrUnknownVertex) {
		t.Errorf("want ErrUnknownVertex, got %v", err)
	}
	if err := c.AddSimplex(); !errors.Is(err, ErrEmptySimplex) {
		t.Errorf("want ErrEmptySimplex, got %v", err)
	}
}

func TestFacetsNonPure(t *testing.T) {
	// Two triangles sharing an edge, plus a dangling edge: facets are the
	// two triangles and the dangling edge; complex is not pure.
	c := NewComplex(3)
	for i := 0; i < 5; i++ {
		if err := c.AddVertex(VertexID(i), i%3, "v"); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(t, c, 0, 1, 2)
	mustAdd(t, c, 1, 2, 3)
	mustAdd(t, c, 3, 4)
	facets := c.Facets()
	if len(facets) != 3 {
		t.Fatalf("facets = %v", facets)
	}
	if c.IsPure() {
		t.Errorf("should not be pure")
	}
	if !c.IsFacet(NewSimplex(3, 4)) || c.IsFacet(NewSimplex(1, 2)) {
		t.Errorf("IsFacet wrong")
	}
}

func mustAdd(t *testing.T, c *Complex, vs ...VertexID) {
	t.Helper()
	if err := c.AddSimplex(vs...); err != nil {
		t.Fatal(err)
	}
}

func TestClosureStarPureComplement(t *testing.T) {
	// The 2-simplex {0,1,2} with facets {0,1,2}; S = {{0}}.
	c := standard(t, 3)
	cl := c.Closure([]Simplex{NewSimplex(0, 1)})
	if cl.NumSimplices() != 3 {
		t.Errorf("closure simplices = %d, want 3", cl.NumSimplices())
	}
	star := c.Star([]Simplex{NewSimplex(0)})
	// Simplices containing vertex 0: {0},{0,1},{0,2},{0,1,2} = 4.
	if len(star) != 4 {
		t.Errorf("star size = %d, want 4", len(star))
	}
	// Pure complement of {vertex 0} in the full simplex: no facet avoids
	// vertex 0, so it is empty.
	pc := c.PureComplement([]Simplex{NewSimplex(0)})
	if pc.NumSimplices() != 0 {
		t.Errorf("pure complement should be empty, got %d simplices", pc.NumSimplices())
	}
}

func TestPureComplementPaperShape(t *testing.T) {
	// Two facets; prohibit a simplex inside only one of them.
	c := NewComplex(3)
	for i := 0; i < 4; i++ {
		if err := c.AddVertex(VertexID(i), i%3, "v"); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(t, c, 0, 1, 2)
	mustAdd(t, c, 1, 2, 3)
	pc := c.PureComplement([]Simplex{NewSimplex(0)})
	if got := len(pc.Facets()); got != 1 {
		t.Fatalf("facets = %d, want 1", got)
	}
	if !pc.HasSimplex(NewSimplex(1, 2, 3)) {
		t.Errorf("surviving facet wrong")
	}
	if !pc.IsPure() {
		t.Errorf("pure complement must be pure")
	}
	if !pc.SubcomplexOf(c) {
		t.Errorf("Pc must be a sub-complex")
	}
}

func TestSkeleton(t *testing.T) {
	c := standard(t, 4)
	sk := c.Skeleton(1)
	if sk.Dimension() != 1 {
		t.Errorf("skeleton dim = %d", sk.Dimension())
	}
	// 4 vertices + 6 edges.
	if sk.NumSimplices() != 10 {
		t.Errorf("skeleton simplices = %d, want 10", sk.NumSimplices())
	}
}

func TestColorSetAndChromatic(t *testing.T) {
	c := standard(t, 3)
	if got := c.ColorSet(NewSimplex(0, 2)); got != procs.SetOf(0, 2) {
		t.Errorf("ColorSet = %v", got)
	}
	// Break chromaticity: two vertices of the same color in a simplex.
	bad := NewComplex(3)
	if err := bad.AddVertex(0, 1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := bad.AddVertex(1, 1, "b"); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, bad, 0, 1)
	if bad.IsChromatic() {
		t.Errorf("should not be chromatic")
	}
}

func TestCloneEqual(t *testing.T) {
	c := standard(t, 3)
	d := c.Clone()
	if !c.Equal(d) || !d.Equal(c) {
		t.Errorf("clone should be equal")
	}
	if err := d.AddVertex(99, 0, "extra"); err != nil {
		t.Fatal(err)
	}
	if c.Equal(d) {
		t.Errorf("modified clone should differ")
	}
}

func TestSimplicialMapVerification(t *testing.T) {
	// Map Chr-like edge subdivision onto the standard simplex.
	dom := NewComplex(2)
	for i, col := range []int{0, 1, 0} {
		if err := dom.AddVertex(VertexID(i), col, "v"); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(t, dom, 0, 1)
	mustAdd(t, dom, 1, 2)
	cod := standard(t, 2)

	m := Map{0: 0, 1: 1, 2: 0}
	if err := m.VerifySimplicial(dom, cod); err != nil {
		t.Errorf("expected simplicial: %v", err)
	}
	if err := m.VerifyChromatic(dom, cod); err != nil {
		t.Errorf("expected chromatic: %v", err)
	}

	// Non-chromatic variant.
	bad := Map{0: 1, 1: 0, 2: 0}
	if err := bad.VerifyChromatic(dom, cod); !errors.Is(err, ErrNotChromaticM) {
		t.Errorf("want ErrNotChromaticM, got %v", err)
	}

	// Partial map.
	partial := Map{0: 0}
	if err := partial.VerifySimplicial(dom, cod); !errors.Is(err, ErrPartialMap) {
		t.Errorf("want ErrPartialMap, got %v", err)
	}

	// Non-simplicial: image edge {0,1}->{0},{1} fine, but force a missing
	// simplex by mapping into a codomain lacking the edge.
	edgeless := NewComplex(2)
	if err := edgeless.AddVertex(0, 0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := edgeless.AddVertex(1, 1, "b"); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifySimplicial(dom, edgeless); !errors.Is(err, ErrNotSimplicial) {
		t.Errorf("want ErrNotSimplicial, got %v", err)
	}
}

func TestCarrierVerification(t *testing.T) {
	dom := standard(t, 2)
	cod := standard(t, 2)
	identity := Map{0: 0, 1: 1}
	full := func(Simplex) *Complex { return cod }
	if err := identity.VerifyCarried(dom, full); err != nil {
		t.Errorf("identity should be carried by the full carrier: %v", err)
	}
	// Carrier that only allows vertex 0: identity map on edge {0,1} violates it.
	tight := func(s Simplex) *Complex {
		return cod.Closure([]Simplex{NewSimplex(0)})
	}
	if err := identity.VerifyCarried(dom, tight); !errors.Is(err, ErrNotCarried) {
		t.Errorf("want ErrNotCarried, got %v", err)
	}
	if err := VerifyCarrierMonotone(dom, full); err != nil {
		t.Errorf("full carrier must be monotone: %v", err)
	}
}
