package sc

// This file implements simplicial maps and carrier maps (Appendix A).

import (
	"errors"
	"fmt"
)

// Map is a vertex map between complexes, the combinatorial datum of a
// simplicial map.
type Map map[VertexID]VertexID

// Map validation errors.
var (
	ErrNotSimplicial = errors.New("map is not simplicial")
	ErrNotChromaticM = errors.New("map is not chromatic")
	ErrNotCarried    = errors.New("map is not carried by the carrier map")
	ErrPartialMap    = errors.New("map does not cover all vertices of the domain")
)

// Apply returns the image of a simplex under the map (canonicalized;
// a non-injective map may collapse dimensions).
func (m Map) Apply(s Simplex) Simplex {
	imgs := make([]VertexID, len(s))
	for i, v := range s {
		imgs[i] = m[v]
	}
	return NewSimplex(imgs...)
}

// VerifySimplicial checks that m maps every vertex of from into to and
// every simplex of from onto a simplex of to.
func (m Map) VerifySimplicial(from, to *Complex) error {
	for _, id := range from.VertexIDs() {
		img, ok := m[id]
		if !ok {
			return fmt.Errorf("%w: vertex %d", ErrPartialMap, id)
		}
		if _, ok := to.Vertex(img); !ok {
			return fmt.Errorf("%w: image vertex %d not in codomain", ErrNotSimplicial, img)
		}
	}
	for _, s := range from.Simplices() {
		if !to.HasSimplex(m.Apply(s)) {
			return fmt.Errorf("%w: image of %v missing", ErrNotSimplicial, s)
		}
	}
	return nil
}

// VerifyChromatic checks color preservation: χ(v) = χ(m(v)). A chromatic
// simplicial map is automatically non-collapsing.
func (m Map) VerifyChromatic(from, to *Complex) error {
	for _, id := range from.VertexIDs() {
		v, _ := from.Vertex(id)
		img, ok := to.Vertex(m[id])
		if !ok {
			return fmt.Errorf("%w: image of %d missing", ErrNotSimplicial, id)
		}
		if v.Color != img.Color {
			return fmt.Errorf("%w: vertex %d color %d -> %d", ErrNotChromaticM, id, v.Color, img.Color)
		}
	}
	return nil
}

// CarrierMap maps simplices of a domain complex to sub-complexes of a
// codomain, given extensionally as the set of simplices allowed as
// images. It must be monotonic: ρ ⊆ σ implies Φ(ρ) ⊆ Φ(σ).
type CarrierMap func(Simplex) *Complex

// VerifyCarried checks that the simplicial map φ (m) is carried by Φ:
// for every simplex σ of from, m(σ) ∈ Φ(σ).
func (m Map) VerifyCarried(from *Complex, carrier CarrierMap) error {
	for _, s := range from.Simplices() {
		img := m.Apply(s)
		allowed := carrier(s)
		if allowed == nil || !allowed.HasSimplex(img) {
			return fmt.Errorf("%w: image of %v", ErrNotCarried, s)
		}
	}
	return nil
}

// VerifyCarrierMonotone checks the carrier-map law Φ(τ ∩ σ) ⊆ Φ(τ) ∩ Φ(σ)
// on all simplex pairs of the domain. Intended for tests on small
// complexes (quadratic in the number of simplices).
func VerifyCarrierMonotone(dom *Complex, carrier CarrierMap) error {
	ss := dom.Simplices()
	for _, a := range ss {
		for _, b := range ss {
			inter := a.Intersect(b)
			if len(inter) == 0 {
				continue
			}
			if !dom.HasSimplex(inter) {
				continue
			}
			ci := carrier(inter)
			ca := carrier(a)
			cb := carrier(b)
			for _, s := range ci.Simplices() {
				if !ca.HasSimplex(s) || !cb.HasSimplex(s) {
					return fmt.Errorf("carrier map not monotone at %v ∩ %v", a, b)
				}
			}
		}
	}
	return nil
}
