package sc

// This file implements the complex-level operations of Section 2:
// closure Cl, star St, pure complement Pc, and skeletons.

// Closure returns Cl(S): the sub-complex formed by all faces of the given
// simplices. Vertices are inherited from c.
func (c *Complex) Closure(gens []Simplex) *Complex {
	out := NewComplex(c.colors)
	for _, g := range gens {
		for _, v := range g {
			if vert, ok := c.verts[v]; ok {
				// Error impossible: vertex data comes from c itself.
				_ = out.AddVertex(v, vert.Color, vert.Label)
			}
		}
		_ = out.AddSimplex(g...)
	}
	return out
}

// Star returns St(S, c): all simplices of c having a simplex of S as a
// face — i.e. {σ ∈ c | faces(σ) ∩ S ≠ ∅}. Note the result is generally
// NOT a complex (it is not inclusion-closed); it is returned as a simplex
// list, matching the paper's usage.
func (c *Complex) Star(s []Simplex) []Simplex {
	keys := make(map[string]bool, len(s))
	for _, g := range s {
		keys[g.Key()] = true
	}
	var out []Simplex
	for _, sim := range c.Simplices() {
		for _, f := range sim.Faces() {
			if keys[f.Key()] {
				out = append(out, sim)
				break
			}
		}
	}
	return out
}

// PureComplement returns Pc(S, c): the maximal pure sub-complex of c of
// the same dimension as c that does not intersect S. Concretely
// (Section 2): Cl({σ ∈ facets(c) | faces(σ) ∩ S = ∅}).
func (c *Complex) PureComplement(s []Simplex) *Complex {
	keys := make(map[string]bool, len(s))
	for _, g := range s {
		keys[g.Key()] = true
	}
	d := c.Dimension()
	var keep []Simplex
	for _, f := range c.Facets() {
		if f.Dim() != d {
			continue
		}
		hit := false
		for _, face := range f.Faces() {
			if keys[face.Key()] {
				hit = true
				break
			}
		}
		if !hit {
			keep = append(keep, f)
		}
	}
	return c.Closure(keep)
}

// Skeleton returns Skel_k(c): the sub-complex of simplices of dimension
// at most k.
func (c *Complex) Skeleton(k int) *Complex {
	var keep []Simplex
	for _, s := range c.Simplices() {
		if s.Dim() <= k {
			keep = append(keep, s)
		}
	}
	return c.Closure(keep)
}
