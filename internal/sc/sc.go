// Package sc implements chromatic simplicial complexes and the
// combinatorial operations the paper relies on: closure Cl, star St, pure
// complement Pc, skeletons, facets, purity, chromatic colorings, and
// simplicial / carrier maps (Section 2 and Appendix A of the paper).
//
// A complex is stored extensionally: a set of vertices plus an
// inclusion-closed set of simplices. Vertices carry a color (the process
// identity χ) and an opaque label used by higher layers to attach
// combinatorial meaning (views, carriers, input/output values).
package sc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"sort"
	"strings"

	"repro/internal/procs"
)

// VertexID identifies a vertex within a complex. Higher layers intern
// structured vertex data (e.g. (color, view) pairs) into stable IDs so
// that complexes over the same vertex universe can be compared directly.
type VertexID int32

// Vertex carries the chromatic color and a human-readable label.
type Vertex struct {
	Color int    // χ(v): the process identity, 0-based
	Label string // display label, e.g. "p2:{p1,p2}"
}

// Simplex is a canonical simplex: vertex IDs sorted ascending, no
// duplicates. The empty simplex is not stored in complexes.
type Simplex []VertexID

// NewSimplex builds a canonical simplex from the given vertices.
func NewSimplex(vs ...VertexID) Simplex {
	out := make(Simplex, len(vs))
	copy(out, vs)
	slices.Sort(out)
	// Deduplicate.
	dst := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dst = append(dst, v)
		}
	}
	return dst
}

// Dim returns the dimension |σ| - 1.
func (s Simplex) Dim() int { return len(s) - 1 }

// Key returns a canonical byte-string key for map usage.
func (s Simplex) Key() string {
	buf := make([]byte, 4*len(s))
	for i, v := range s {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return string(buf)
}

// Contains reports whether v is a vertex of s.
func (s Simplex) Contains(v VertexID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// IsFaceOf reports whether s ⊆ t.
func (s Simplex) IsFaceOf(t Simplex) bool {
	i := 0
	for _, v := range s {
		for i < len(t) && t[i] < v {
			i++
		}
		if i >= len(t) || t[i] != v {
			return false
		}
		i++
	}
	return true
}

// Union returns the canonical union of two simplices.
func (s Simplex) Union(t Simplex) Simplex {
	return NewSimplex(append(append(Simplex{}, s...), t...)...)
}

// Intersect returns the canonical intersection of two simplices.
func (s Simplex) Intersect(t Simplex) Simplex {
	var out Simplex
	i := 0
	for _, v := range s {
		for i < len(t) && t[i] < v {
			i++
		}
		if i < len(t) && t[i] == v {
			out = append(out, v)
		}
	}
	return out
}

// Equal reports whether two canonical simplices are identical.
func (s Simplex) Equal(t Simplex) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Faces returns all non-empty faces of s (2^|s| - 1 simplices).
func (s Simplex) Faces() []Simplex {
	n := len(s)
	out := make([]Simplex, 0, (1<<uint(n))-1)
	for mask := 1; mask < 1<<uint(n); mask++ {
		f := make(Simplex, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				f = append(f, s[i])
			}
		}
		out = append(out, f)
	}
	return out
}

// Errors returned by complex mutation and validation.
var (
	ErrUnknownVertex   = errors.New("simplex references unknown vertex")
	ErrVertexConflict  = errors.New("vertex re-added with different data")
	ErrNotChromatic    = errors.New("complex is not chromatic")
	ErrEmptySimplex    = errors.New("empty simplex")
	ErrColorOutOfRange = errors.New("vertex color out of range")
)

// Complex is a finite simplicial complex over colored vertices.
// The zero value is not usable; create instances with NewComplex.
type Complex struct {
	colors    int
	verts     map[VertexID]Vertex
	simplices map[string]Simplex

	facetCache []Simplex // invalidated on mutation
}

// NewComplex creates an empty complex whose vertex colors must lie in
// [0, colors).
func NewComplex(colors int) *Complex {
	return &Complex{
		colors:    colors,
		verts:     make(map[VertexID]Vertex),
		simplices: make(map[string]Simplex),
	}
}

// Colors returns the number of colors (processes) of the complex.
func (c *Complex) Colors() int { return c.colors }

// AddVertex registers a vertex. Re-adding the same vertex with identical
// data is a no-op; conflicting data is an error.
func (c *Complex) AddVertex(id VertexID, color int, label string) error {
	if color < 0 || color >= c.colors {
		return fmt.Errorf("%w: color %d, want [0,%d)", ErrColorOutOfRange, color, c.colors)
	}
	if old, ok := c.verts[id]; ok {
		if old.Color != color || old.Label != label {
			return fmt.Errorf("%w: id %d", ErrVertexConflict, id)
		}
		return nil
	}
	c.verts[id] = Vertex{Color: color, Label: label}
	c.facetCache = nil
	// Every vertex is itself a simplex.
	s := Simplex{id}
	c.simplices[s.Key()] = s
	return nil
}

// AddSimplex adds a simplex and all its faces. All vertices must have
// been registered beforehand.
//
// Faces are probed with allocation-free keys and only materialized when
// absent, so re-adding simplices whose boundary already exists (the
// common case while the subdivision engine streams facets that share
// faces) costs no allocations beyond the canonical form itself.
func (c *Complex) AddSimplex(vs ...VertexID) error {
	if len(vs) == 0 {
		return ErrEmptySimplex
	}
	s := NewSimplex(vs...)
	for _, v := range s {
		if _, ok := c.verts[v]; !ok {
			return fmt.Errorf("%w: id %d", ErrUnknownVertex, v)
		}
	}
	n := len(s)
	var stack [64]byte
	var buf []byte
	if 4*n <= len(stack) {
		buf = stack[:0]
	} else {
		buf = make([]byte, 0, 4*n)
	}
	for _, v := range s {
		buf = binary.BigEndian.AppendUint32(buf, uint32(v))
	}
	if _, ok := c.simplices[string(buf)]; ok {
		return nil
	}
	for mask := 1; mask < 1<<uint(n); mask++ {
		buf = buf[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				buf = binary.BigEndian.AppendUint32(buf, uint32(s[i]))
			}
		}
		if _, ok := c.simplices[string(buf)]; ok {
			continue
		}
		f := make(Simplex, 0, bits.OnesCount(uint(mask)))
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				f = append(f, s[i])
			}
		}
		c.simplices[string(buf)] = f
	}
	c.facetCache = nil
	return nil
}

// Has reports whether the given vertex set is a simplex of the complex.
func (c *Complex) Has(vs ...VertexID) bool {
	if len(vs) == 0 {
		return false
	}
	_, ok := c.simplices[NewSimplex(vs...).Key()]
	return ok
}

// HasSimplex reports whether the canonical simplex s belongs to c.
func (c *Complex) HasSimplex(s Simplex) bool {
	_, ok := c.simplices[s.Key()]
	return ok
}

// Vertex returns the data of a vertex.
func (c *Complex) Vertex(id VertexID) (Vertex, bool) {
	v, ok := c.verts[id]
	return v, ok
}

// VertexIDs returns all vertex IDs in ascending order.
func (c *Complex) VertexIDs() []VertexID {
	out := make([]VertexID, 0, len(c.verts))
	for id := range c.verts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumVertices returns the number of vertices.
func (c *Complex) NumVertices() int { return len(c.verts) }

// NumSimplices returns the number of (non-empty) simplices.
func (c *Complex) NumSimplices() int { return len(c.simplices) }

// Simplices returns all simplices in a deterministic order
// (by dimension, then lexicographically).
func (c *Complex) Simplices() []Simplex {
	out := make([]Simplex, 0, len(c.simplices))
	for _, s := range c.simplices {
		out = append(out, s)
	}
	sortSimplices(out)
	return out
}

// Dimension returns the dimension of the complex (-1 when empty).
func (c *Complex) Dimension() int {
	d := -1
	for _, s := range c.simplices {
		if s.Dim() > d {
			d = s.Dim()
		}
	}
	return d
}

// Facets returns the facets: simplices not strictly contained in any
// other simplex of the complex.
func (c *Complex) Facets() []Simplex {
	if c.facetCache != nil {
		return c.facetCache
	}
	all := c.Simplices()
	// A simplex is a facet iff no single-vertex extension is a simplex.
	ids := c.VertexIDs()
	var facets []Simplex
	for _, s := range all {
		isFacet := true
		for _, v := range ids {
			if s.Contains(v) {
				continue
			}
			if c.HasSimplex(s.Union(Simplex{v})) {
				isFacet = false
				break
			}
		}
		if isFacet {
			facets = append(facets, s)
		}
	}
	c.facetCache = facets
	return facets
}

// IsFacet reports facet(σ, c): σ ∈ c and σ is not a proper face of a
// larger simplex of c.
func (c *Complex) IsFacet(s Simplex) bool {
	if !c.HasSimplex(s) {
		return false
	}
	for _, v := range c.VertexIDs() {
		if s.Contains(v) {
			continue
		}
		if c.HasSimplex(s.Union(Simplex{v})) {
			return false
		}
	}
	return true
}

// IsPure reports whether all facets share the complex's dimension.
func (c *Complex) IsPure() bool {
	d := c.Dimension()
	for _, f := range c.Facets() {
		if f.Dim() != d {
			return false
		}
	}
	return true
}

// ColorSet returns χ(σ) as a process set.
func (c *Complex) ColorSet(s Simplex) procs.Set {
	var out procs.Set
	for _, v := range s {
		out = out.Add(procs.ID(c.verts[v].Color))
	}
	return out
}

// IsChromatic verifies that the coloring is non-collapsing: every simplex
// has pairwise-distinct vertex colors.
func (c *Complex) IsChromatic() bool {
	for _, s := range c.simplices {
		if c.ColorSet(s).Size() != len(s) {
			return false
		}
	}
	return true
}

// Label renders a simplex using vertex labels.
func (c *Complex) Label(s Simplex) string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = c.verts[v].Label
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Clone returns a deep copy of the complex.
func (c *Complex) Clone() *Complex {
	out := NewComplex(c.colors)
	for id, v := range c.verts {
		out.verts[id] = v
		s := Simplex{id}
		out.simplices[s.Key()] = s
	}
	for k, s := range c.simplices {
		out.simplices[k] = s
	}
	return out
}

// Equal reports whether two complexes have identical vertex sets (with
// identical data) and identical simplex sets.
func (c *Complex) Equal(other *Complex) bool {
	if len(c.verts) != len(other.verts) || len(c.simplices) != len(other.simplices) {
		return false
	}
	for id, v := range c.verts {
		if ov, ok := other.verts[id]; !ok || ov != v {
			return false
		}
	}
	for k := range c.simplices {
		if _, ok := other.simplices[k]; !ok {
			return false
		}
	}
	return true
}

// SubcomplexOf reports whether every simplex of c is a simplex of other.
func (c *Complex) SubcomplexOf(other *Complex) bool {
	for k := range c.simplices {
		if _, ok := other.simplices[k]; !ok {
			return false
		}
	}
	return true
}

func sortSimplices(ss []Simplex) {
	sort.Slice(ss, func(i, j int) bool {
		if len(ss[i]) != len(ss[j]) {
			return len(ss[i]) < len(ss[j])
		}
		for k := range ss[i] {
			if ss[i][k] != ss[j][k] {
				return ss[i][k] < ss[j][k]
			}
		}
		return false
	})
}
