package render

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/procs"
)

func TestChr1SVGWellFormed(t *testing.T) {
	svg := Chr1SVG(3)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatalf("not an svg document")
	}
	// 13 facets drawn as triangles plus background rect.
	if got := strings.Count(svg, "<polygon"); got != 13 {
		t.Errorf("triangles = %d, want 13", got)
	}
	if !strings.Contains(svg, ">p2<") {
		t.Errorf("corner labels missing")
	}
}

func TestAffineTaskSVG(t *testing.T) {
	u := chromatic.NewUniverse(3)
	task, err := affine.BuildRTres(u, 1)
	if err != nil {
		t.Fatal(err)
	}
	svg := AffineTaskSVG(task)
	// 169 background + 142 blue facets.
	if got := strings.Count(svg, "<polygon"); got != 169+142 {
		t.Errorf("polygons = %d, want %d", got, 169+142)
	}
	if !strings.Contains(svg, colorBlue) {
		t.Errorf("blue facets missing")
	}
}

func TestCont2SVG(t *testing.T) {
	svg := Cont2SVG(3)
	// 78 contention edges drawn as red lines; 6 triangles red.
	if got := strings.Count(svg, `stroke="`+colorRed+`"`); got != 78 {
		t.Errorf("red lines = %d, want 78", got)
	}
	if got := strings.Count(svg, `fill="`+colorRed+`"`); got != 6 {
		t.Errorf("red triangles = %d, want 6", got)
	}
}

func TestCriticalSVG(t *testing.T) {
	alpha := adversary.KObstructionFree(3, 1).Alpha
	svg := CriticalSVG(3, alpha, "1-OF")
	// For 1-OF the critical simplices are the first blocks of the 13
	// schedules: 3 corner dots (solo first), triangles and edges. At
	// minimum the three corners appear as orange dots, and the sync
	// facet as an orange triangle.
	if got := strings.Count(svg, `fill="`+colorOrange+`"`); got == 0 {
		t.Errorf("no orange critical simplices rendered")
	}
	if !strings.Contains(svg, "critical simplices: 1-OF") {
		t.Errorf("title missing")
	}
}

func TestConcurrencySVG(t *testing.T) {
	fig5b, err := adversary.SupersetClosure(3, procs.SetOf(1), procs.SetOf(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	svg := ConcurrencySVG(3, fig5b.Alpha, "fig5b")
	if !strings.Contains(svg, colorGreen) {
		t.Errorf("level-2 facets missing for fig5b model")
	}
	if !strings.Contains(svg, colorOrange) {
		t.Errorf("level-1 facets missing for fig5b model")
	}
	// For 1-OF there is no level-2 facet (α ≤ 1): no green.
	oneOF := ConcurrencySVG(3, adversary.KObstructionFree(3, 1).Alpha, "1-OF")
	if strings.Contains(oneOF, colorGreen) {
		t.Errorf("1-OF must have no level-2 facets")
	}
}

func TestComplexStats(t *testing.T) {
	u := chromatic.NewUniverse(3)
	task, err := affine.BuildRkOF(u, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := ComplexStats(task.Complex())
	if !strings.Contains(s, "facets=73") || !strings.Contains(s, "pure=true") {
		t.Errorf("stats = %s", s)
	}
}
