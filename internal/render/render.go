// Package render regenerates the paper's figures for 3-process systems
// as SVG drawings: Chr s (Figure 1a), affine tasks as sub-complexes of
// Chr² s (Figures 1b and 7), the contention complex (Figure 4c),
// critical simplices (Figure 5) and concurrency maps (Figure 6).
//
// The drawings use the Appendix A geometric coordinates (barycentric
// over the corners of s, with p2 on top, p1 bottom-left and p3
// bottom-right, matching the paper's orientation).
package render

import (
	"fmt"
	"strings"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/procs"
	"repro/internal/sc"
)

const (
	canvas  = 640.0
	margin  = 40.0
	sideLen = canvas - 2*margin
)

// palette matching the paper's figures.
const (
	colorBase   = "#d8d8d8"
	colorBlue   = "#4a90d9" // affine-task facets (Figures 1b, 7)
	colorRed    = "#d0403f" // contention simplices (Figure 4c)
	colorOrange = "#e8962f" // critical simplices / level 1 (Figures 5, 6)
	colorGreen  = "#4caf50" // concurrency level 2 (Figure 6)
	colorBlack  = "#333333"
	colorEdge   = "#888888"
	colorVertex = "#222222"
)

// svgPoint maps a barycentric point to canvas coordinates (y flipped so
// p2 is on top).
func svgPoint(p chromatic.Point) (float64, float64) {
	x, y := chromatic.Planar(p)
	return margin + x*sideLen, margin + (0.8660254037844386-y)*sideLen
}

type svgBuilder struct {
	b strings.Builder
}

func newSVG(title string) *svgBuilder {
	s := &svgBuilder{}
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`,
		canvas, canvas*0.92, canvas, canvas*0.92)
	fmt.Fprintf(&s.b, `<title>%s</title>`, title)
	fmt.Fprintf(&s.b, `<rect width="100%%" height="100%%" fill="white"/>`)
	return s
}

func (s *svgBuilder) triangle(a, b, c chromatic.Point, fill string, opacity float64) {
	ax, ay := svgPoint(a)
	bx, by := svgPoint(b)
	cx, cy := svgPoint(c)
	fmt.Fprintf(&s.b,
		`<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="%s" fill-opacity="%.2f" stroke="%s" stroke-width="0.6"/>`,
		ax, ay, bx, by, cx, cy, fill, opacity, colorEdge)
}

func (s *svgBuilder) line(a, b chromatic.Point, stroke string, width float64) {
	ax, ay := svgPoint(a)
	bx, by := svgPoint(b)
	fmt.Fprintf(&s.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`,
		ax, ay, bx, by, stroke, width)
}

func (s *svgBuilder) dot(p chromatic.Point, fill string, r float64) {
	x, y := svgPoint(p)
	fmt.Fprintf(&s.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`, x, y, r, fill)
}

func (s *svgBuilder) label(p chromatic.Point, text string) {
	x, y := svgPoint(p)
	fmt.Fprintf(&s.b, `<text x="%.1f" y="%.1f" font-size="14" font-family="sans-serif" fill="%s">%s</text>`,
		x+6, y-6, colorBlack, text)
}

func (s *svgBuilder) String() string {
	return s.b.String() + "</svg>"
}

// cornerLabels adds the p1/p2/p3 corner labels.
func (s *svgBuilder) cornerLabels(n int) {
	for i := 0; i < n && i < 3; i++ {
		s.label(chromatic.Corner(n, procs.ID(i)), procs.ID(i).String())
	}
}

// Chr1SVG renders the standard chromatic subdivision Chr s (Figure 1a).
func Chr1SVG(n int) string {
	svg := newSVG(fmt.Sprintf("Chr s, n=%d", n))
	full := procs.FullSet(n)
	for _, op := range procs.EnumerateOrderedPartitions(full) {
		views := op.Views()
		pts := make([]chromatic.Point, 0, n)
		full.ForEach(func(p procs.ID) {
			pts = append(pts, chromatic.Coords1(n, p, views[p]))
		})
		if len(pts) == 3 {
			svg.triangle(pts[0], pts[1], pts[2], colorBase, 0.5)
		}
	}
	// Vertices on top.
	for _, op := range procs.EnumerateOrderedPartitions(full) {
		views := op.Views()
		full.ForEach(func(p procs.ID) {
			svg.dot(chromatic.Coords1(n, p, views[p]), colorVertex, 3)
		})
	}
	svg.cornerLabels(n)
	return svg.String()
}

// AffineTaskSVG renders an affine task's facets in blue over the grey
// Chr² s background (Figures 1b and 7).
func AffineTaskSVG(task *affine.Task) string {
	n := task.N()
	u := task.Universe()
	svg := newSVG(task.Name)
	// Background: all facets of Chr² s.
	chromatic.ForEachRun2(procs.FullSet(n), func(r chromatic.Run2) bool {
		drawRunTriangle(svg, u, r, colorBase, 0.4)
		return true
	})
	for _, r := range task.Facets() {
		drawRunTriangle(svg, u, r, colorBlue, 0.75)
	}
	svg.cornerLabels(n)
	return svg.String()
}

func drawRunTriangle(svg *svgBuilder, u *chromatic.Universe, r chromatic.Run2, fill string, op float64) {
	ids := r.FacetIDs(u)
	if len(ids) != 3 {
		return
	}
	pts := make([]chromatic.Point, 3)
	for i, id := range ids {
		pts[i] = chromatic.Coords2(u.N(), u.Vertex(id))
	}
	svg.triangle(pts[0], pts[1], pts[2], fill, op)
}

// Cont2SVG renders the 2-contention complex in red over Chr² s
// (Figure 4c).
func Cont2SVG(n int) string {
	u := chromatic.NewUniverse(n)
	svg := newSVG(fmt.Sprintf("Cont², n=%d", n))
	chromatic.ForEachRun2(procs.FullSet(n), func(r chromatic.Run2) bool {
		drawRunTriangle(svg, u, r, colorBase, 0.4)
		return true
	})
	for _, s := range affine.Cont2Simplices(u, 1) {
		pts := make([]chromatic.Point, len(s))
		for i, id := range s {
			pts[i] = chromatic.Coords2(n, u.Vertex(id))
		}
		switch len(pts) {
		case 2:
			svg.line(pts[0], pts[1], colorRed, 2.2)
		case 3:
			svg.triangle(pts[0], pts[1], pts[2], colorRed, 0.8)
		}
	}
	svg.cornerLabels(n)
	return svg.String()
}

// CriticalSVG renders the critical simplices of Chr s in orange
// (Figure 5) for the given agreement function.
func CriticalSVG(n int, alpha adversary.AlphaFunc, name string) string {
	svg := newSVG("critical simplices: " + name)
	full := procs.FullSet(n)
	for _, op := range procs.EnumerateOrderedPartitions(full) {
		views := op.Views()
		pts := make([]chromatic.Point, 0, n)
		full.ForEach(func(p procs.ID) {
			pts = append(pts, chromatic.Coords1(n, p, views[p]))
		})
		if len(pts) == 3 {
			svg.triangle(pts[0], pts[1], pts[2], colorBase, 0.4)
		}
	}
	seen := map[string]bool{}
	affine.ForEachChr1Simplex(full, func(s affine.Chr1Simplex) bool {
		for _, theta := range affine.CriticalSimplices(alpha, s) {
			pts := make([]chromatic.Point, 0, theta.Size())
			key := ""
			theta.ForEach(func(q procs.ID) {
				pts = append(pts, chromatic.Coords1(n, q, s.Views[q]))
				key += fmt.Sprintf("%d:%x;", q, uint32(s.Views[q]))
			})
			if seen[key] {
				continue
			}
			seen[key] = true
			switch len(pts) {
			case 1:
				svg.dot(pts[0], colorOrange, 6)
			case 2:
				svg.line(pts[0], pts[1], colorOrange, 3)
			case 3:
				svg.triangle(pts[0], pts[1], pts[2], colorOrange, 0.85)
			}
		}
		return true
	})
	svg.cornerLabels(n)
	return svg.String()
}

// ConcurrencySVG renders the concurrency map over Chr s (Figure 6):
// every simplex (facet, edge, vertex) is tinted by its own Conc_α level
// (black 0, orange 1, green 2), matching the per-simplex coloring of the
// paper's figure.
func ConcurrencySVG(n int, alpha adversary.AlphaFunc, name string) string {
	svg := newSVG("concurrency map: " + name)
	levelStyle := func(level int) (string, float64) {
		switch {
		case level >= 2:
			return colorGreen, 0.7
		case level == 1:
			return colorOrange, 0.7
		default:
			return colorBlack, 0.25
		}
	}
	seen := map[string]bool{}
	// Facets first (background), then edges, then vertices on top.
	byDim := map[int][]affine.Chr1Simplex{}
	affine.ForEachChr1Simplex(procs.FullSet(n), func(s affine.Chr1Simplex) bool {
		d := s.Procs().Size() - 1
		byDim[d] = append(byDim[d], s)
		return true
	})
	for d := n - 1; d >= 0; d-- {
		for _, s := range byDim[d] {
			pts := make([]chromatic.Point, 0, d+1)
			key := ""
			s.Procs().ForEach(func(q procs.ID) {
				pts = append(pts, chromatic.Coords1(n, q, s.Views[q]))
				key += fmt.Sprintf("%d:%x;", q, uint32(s.Views[q]))
			})
			if seen[key] {
				continue
			}
			seen[key] = true
			fill, opacity := levelStyle(affine.Critical(alpha, s).Conc)
			switch len(pts) {
			case 1:
				svg.dot(pts[0], fill, 4)
			case 2:
				svg.line(pts[0], pts[1], fill, 2.4)
			case 3:
				svg.triangle(pts[0], pts[1], pts[2], fill, opacity)
			}
		}
	}
	svg.cornerLabels(n)
	return svg.String()
}

// ComplexStats summarizes a complex for textual figure reproduction.
func ComplexStats(c *sc.Complex) string {
	top := 0
	d := c.Dimension()
	for _, f := range c.Facets() {
		if f.Dim() == d {
			top++
		}
	}
	return fmt.Sprintf("vertices=%d simplices=%d dim=%d facets=%d pure=%v chromatic=%v",
		c.NumVertices(), c.NumSimplices(), d, top, c.IsPure(), c.IsChromatic())
}
