package fact

// Benchmarks for the concurrent solvability engine: serial vs parallel
// construction of R_A(I) (one level of the iterated model) on the
// adversaries the acceptance experiments use, plus the memoized solve
// path. Each case first asserts that the parallel output is
// byte-identical to the serial one.

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/solver"
	"repro/internal/tasks"
)

// BenchmarkParallelApplyAffine compares serial and all-core construction
// of R_A(I) over the standard input complex for n = 3..5.
func BenchmarkParallelApplyAffine(b *testing.B) {
	cases := []struct {
		name string
		n    int
		adv  *adversary.Adversary
		slow bool
	}{
		{"1-OF/n=3", 3, adversary.KObstructionFree(3, 1), false},
		{"2-OF/n=4", 4, adversary.KObstructionFree(4, 2), false},
		{"1-res/n=4", 4, adversary.TResilient(4, 1), false},
		{"1-res/n=5", 5, adversary.TResilient(5, 1), true},
	}
	for _, c := range cases {
		if c.slow && testing.Short() {
			continue
		}
		u := chromatic.NewUniverse(c.n)
		ra, err := affine.BuildRAForAdversary(u, c.adv, affine.DefaultVariant)
		if err != nil {
			b.Fatal(err)
		}
		input := tasks.StandardInput(c.n)
		// On a single-CPU host still exercise the concurrent engine.
		workers := chromatic.DefaultWorkers()
		if workers < 2 {
			workers = 2
		}
		// The task is consumed directly as a chromatic.MemberTables
		// provider — the engine's primary (rank-indexed) entry point;
		// the callback path is pinned equivalent by tests elsewhere.
		// Byte-identical outputs across worker counts (acceptance check).
		serial, err := chromatic.ApplyAffineTables(input, ra, 1)
		if err != nil {
			b.Fatal(err)
		}
		parallel, err := chromatic.ApplyAffineTables(input, ra, workers)
		if err != nil {
			b.Fatal(err)
		}
		if serial.Complex.Hash() != parallel.Complex.Hash() {
			b.Fatalf("%s: parallel output differs from serial", c.name)
		}
		b.Run(c.name+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chromatic.ApplyAffineTables(input, ra, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chromatic.ApplyAffineTables(input, ra, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveMemoized measures the FACT decision with and without the
// iteration cache: the cached path reuses R_A^ℓ(I) across calls.
func BenchmarkSolveMemoized(b *testing.B) {
	u := chromatic.NewUniverse(3)
	ra, err := affine.BuildRAForAdversary(u, adversary.TResilient(3, 1), affine.DefaultVariant)
	if err != nil {
		b.Fatal(err)
	}
	task := tasks.KSetConsensus(3, 2)
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := solver.SolveAffineWith(task, ra, 1, solver.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Solvable {
				b.Fatal("want solvable")
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := chromatic.NewTowerCache()
		opts := solver.Options{Cache: cache}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := solver.SolveAffineWith(task, ra, 1, opts)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Solvable {
				b.Fatal("want solvable")
			}
		}
	})
}

// BenchmarkParallelSolve compares serial and parallel map search on a
// fresh (uncached) decision per iteration.
func BenchmarkParallelSolve(b *testing.B) {
	u := chromatic.NewUniverse(3)
	ra, err := affine.BuildRAForAdversary(u, adversary.KObstructionFree(3, 1), affine.DefaultVariant)
	if err != nil {
		b.Fatal(err)
	}
	task := tasks.KSetConsensus(3, 1)
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = fmt.Sprintf("parallel-%d", chromatic.DefaultWorkers())
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := solver.SolveAffineWith(task, ra, 1, solver.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Solvable {
					b.Fatal("want solvable")
				}
			}
		})
	}
}
