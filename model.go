package fact

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/core"
	"repro/internal/render"
	"repro/internal/solver"
	"repro/internal/tasks"
)

// Model bundles a fair adversary with its affine task R_A — the two
// sides of the FACT equivalence — and exposes the paper's constructive
// machinery.
type Model struct {
	adv *adversary.Adversary
	u   *chromatic.Universe
	ra  *affine.Task

	workers int // solver/subdivision worker bound; 0 = all CPUs
}

// NewModel builds the affine task R_A (Definition 9, default guard
// reading) for the adversary. An error is reported for adversaries
// whose α(Π) = 0 (the affine task would be empty) — and callers should
// check fairness with Adversary().IsFair() when the FACT guarantees are
// required.
//
// All models of the same system size built through NewModel share one
// process-wide chromatic.Universe, so each Chr² vertex is interned once
// per process rather than once per model. Use NewModelWithUniverse with
// a fresh universe for an isolated vertex identity space.
func NewModel(a *adversary.Adversary) (*Model, error) {
	return NewModelWithUniverse(chromatic.SharedUniverse(a.N()), a)
}

// NewModelWithUniverse is NewModel over a caller-provided Chr² vertex
// interner, so many models of the same system size share one vertex
// identity space instead of re-interning per model — what the census
// engine does internally for whole-landscape sweeps. The universe must
// have the adversary's system size and is safe to share concurrently.
func NewModelWithUniverse(u *chromatic.Universe, a *adversary.Adversary) (*Model, error) {
	if u.N() != a.N() {
		return nil, fmt.Errorf("model for %v: universe has n=%d, adversary n=%d", a, u.N(), a.N())
	}
	ra, err := affine.BuildRAForAdversary(u, a, affine.DefaultVariant)
	if err != nil {
		return nil, fmt.Errorf("model for %v: %w", a, err)
	}
	return &Model{adv: a, u: u, ra: ra}, nil
}

// Adversary returns the underlying adversary.
func (m *Model) Adversary() *Adversary { return m.adv }

// AffineTask returns R_A.
func (m *Model) AffineTask() *AffineTask { return m.ra }

// N returns the system size.
func (m *Model) N() int { return m.adv.N() }

// Setcon returns the set-consensus power of the model.
func (m *Model) Setcon() int { return m.adv.Setcon() }

// SetWorkers bounds the worker pools used by Solve's subdivision and
// map-search engines: 1 forces the serial reference paths, <= 0 (the
// default) uses one worker per CPU.
func (m *Model) SetWorkers(workers int) { m.workers = workers }

// Signature returns a deterministic identifier of the model (its
// adversary plus its affine task), usable as a memoization key.
func (m *Model) Signature() string {
	return m.adv.Signature() + "/" + m.ra.Signature()
}

// Alpha evaluates the agreement function at P.
func (m *Model) Alpha(p ProcSet) int { return m.adv.Alpha(p) }

// Solve decides whether the task is solvable in this model by searching
// for a chromatic simplicial map from R_A^ℓ(I) to the output complex,
// ℓ = 1..maxRounds (Theorem 16). The iterated complexes R_A^ℓ(I) are
// memoized process-wide, so repeated decisions against the same model
// and input reuse them.
func (m *Model) Solve(task *Task, maxRounds int) (*SolveResult, error) {
	return m.SolveWith(task, maxRounds, SolverOptions{})
}

// SolveWith is Solve with explicit engine options. Unset options inherit
// the model's defaults (SetWorkers, the process-wide tower cache).
func (m *Model) SolveWith(task *Task, maxRounds int, opts SolverOptions) (*SolveResult, error) {
	if opts.Workers == 0 {
		opts.Workers = m.workers
	}
	if opts.Cache == nil {
		opts.Cache = chromatic.DefaultTowerCache
	}
	// CacheKey is left for SolveAffineWith to default to the affine
	// task's signature: the tower depends only on the membership
	// predicate, and this keeps Model.Solve and direct
	// solver.SolveAffine calls sharing one cache entry.
	return solver.SolveAffineWith(task, m.ra, maxRounds, opts)
}

// SolveKSetConsensus decides k-set consensus solvability — by the FACT
// theorem the answer is k ≥ Setcon().
func (m *Model) SolveKSetConsensus(k, maxRounds int) (*SolveResult, error) {
	return m.Solve(tasks.KSetConsensus(m.N(), k), maxRounds)
}

// VerifyWitness independently re-validates a witness map returned by
// Solve: simplicial, chromatic, and carried by Δ on every simplex of
// R_A^rounds(I). The sweep runs on the model's worker pool (SetWorkers)
// and reuses the process-wide tower cache.
func (m *Model) VerifyWitness(task *Task, rounds int, witness VertexMap) error {
	return solver.VerifyWitnessTables(task, m.ra, rounds, witness, solver.Options{
		Workers:  m.workers,
		Cache:    chromatic.DefaultTowerCache,
		CacheKey: m.ra.Signature(),
	})
}

// VerifyAlgorithmOne runs the Theorem 7 verification campaign: `trials`
// random α-model schedules of Algorithm 1, checking liveness and that
// outputs land in R_A.
func (m *Model) VerifyAlgorithmOne(trials int, seed int64) *AlgOneReport {
	return core.CheckAlgorithmOne(m.N(), m.adv.Alpha, m.ra, trials, seed)
}

// VerifySetConsensusSimulation runs the Section 6 campaign: α-adaptive
// set consensus over iterations of R_A.
func (m *Model) VerifySetConsensusSimulation(trials int, seed int64) *SetConsensusReport {
	return core.CheckSetConsensus(m.ra, m.adv.Alpha, trials, seed)
}

// NewSetConsensusSim returns a Section 6 α-adaptive set-consensus
// simulator over this model's iterated affine task.
func (m *Model) NewSetConsensusSim() *SetConsensusSim {
	return core.NewSetConsensusSim(m.ra, m.adv.Alpha)
}

// VerifyMuQ checks Properties 9, 10 and 12 of the μ_Q leader map
// exhaustively over the facets of R_A.
func (m *Model) VerifyMuQ() error {
	if err := core.CheckMuQValidity(m.adv.Alpha, m.ra); err != nil {
		return fmt.Errorf("validity (Property 9): %w", err)
	}
	if err := core.CheckMuQAgreement(m.adv.Alpha, m.ra); err != nil {
		return fmt.Errorf("agreement (Property 10): %w", err)
	}
	if err := core.CheckMuQRobustness(m.adv.Alpha, m.ra); err != nil {
		return fmt.Errorf("robustness (Property 12): %w", err)
	}
	return nil
}

// Stats summarizes the affine task's complex.
func (m *Model) Stats() string {
	return fmt.Sprintf("%s: %d facets, %d vertices", m.ra.Name, m.ra.NumFacets(), m.ra.VertexCensus())
}

// Figure kinds accepted by FigureSVG.
const (
	FigureChr         = "chr"         // Figure 1a: Chr s
	FigureAffineTask  = "affine"      // Figures 1b and 7: R_A in blue
	FigureContention  = "contention"  // Figure 4c: Cont² in red
	FigureCritical    = "critical"    // Figure 5: critical simplices
	FigureConcurrency = "concurrency" // Figure 6: concurrency map
)

// FigureSVG regenerates one of the paper's figures for this model
// (3-process systems render best; larger n still produce valid SVG of
// the front face).
func (m *Model) FigureSVG(kind string) (string, error) {
	switch kind {
	case FigureChr:
		return render.Chr1SVG(m.N()), nil
	case FigureAffineTask:
		return render.AffineTaskSVG(m.ra), nil
	case FigureContention:
		return render.Cont2SVG(m.N()), nil
	case FigureCritical:
		return render.CriticalSVG(m.N(), m.adv.Alpha, m.adv.String()), nil
	case FigureConcurrency:
		return render.ConcurrencySVG(m.N(), m.adv.Alpha, m.adv.String()), nil
	default:
		return "", fmt.Errorf("unknown figure kind %q", kind)
	}
}
