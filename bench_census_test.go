package fact

// Benchmarks for the sharded census engine and the parallel witness
// verifier: throughput scaling with the worker count over the n=3
// Figure 2 domain (classification) and the n=2 domain (full solve
// sweep), plus serial-vs-parallel VerifyWitness on a solved instance.

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/affine"
	"repro/internal/chromatic"
	"repro/internal/solver"
	"repro/internal/tasks"
)

// BenchmarkCensusClassify sweeps all 128 adversaries at n=3.
func BenchmarkCensusClassify(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("n=3/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := RunCensus(3, CensusOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Summary.Fair != 44 {
					b.Fatalf("fair = %d, want 44", rep.Summary.Fair)
				}
			}
		})
	}
}

// BenchmarkCensusSolve runs the full solve sweep (R_A construction,
// solvability decision and witness verification per fair adversary)
// over the n=2 domain, with a fresh tower cache per iteration so the
// engine's own sharing is what is measured.
func BenchmarkCensusSolve(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("n=2/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := RunCensus(2, CensusOptions{
					Workers:         workers,
					Solve:           true,
					KTask:           1,
					VerifyWitnesses: true,
					Cache:           NewTowerCache(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Summary.Solved == 0 {
					b.Fatal("solve sweep decided nothing")
				}
			}
		})
	}
}

// BenchmarkVerifyWitness compares the serial and parallel witness
// sweeps on 2-set consensus over R_{1-res}(3), reusing one cached tower
// so only the carried-by-Δ verification is measured.
func BenchmarkVerifyWitness(b *testing.B) {
	u := chromatic.NewUniverse(3)
	ra, err := affine.BuildRAForAdversary(u, adversary.TResilient(3, 1), affine.DefaultVariant)
	if err != nil {
		b.Fatal(err)
	}
	task := tasks.KSetConsensus(3, 2)
	cache := chromatic.NewTowerCache()
	res, err := solver.SolveAffineWith(task, ra, 1, solver.Options{Cache: cache})
	if err != nil {
		b.Fatal(err)
	}
	if !res.Solvable {
		b.Fatal("instance should be solvable")
	}
	member := ra.Membership()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := solver.VerifyWitnessWith(task, member, res.Rounds, res.Map, solver.Options{
					Workers:  workers,
					Cache:    cache,
					CacheKey: ra.Signature(),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCensusStream compares the streaming engine against the
// collecting one over the n=3 domain — the tentpole claim is that
// bounded-memory streaming costs nothing on throughput — plus the
// orbit-reduced sweep, which examines 40 of the 128 adversaries for
// the same totals.
func BenchmarkCensusStream(b *testing.B) {
	check := func(b *testing.B, sum CensusSummary) {
		b.Helper()
		if sum.Fair != 44 || sum.Total != 128 {
			b.Fatalf("summary (total %d, fair %d), want (128, 44)", sum.Total, sum.Fair)
		}
	}
	b.Run("collect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := RunCensus(3, CensusOptions{Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			check(b, rep.Summary)
		}
	})
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := StreamCensus(3, CensusOptions{Workers: 4}, nil)
			if err != nil {
				b.Fatal(err)
			}
			check(b, rep.Summary)
		}
	})
	b.Run("stream-orbits", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := StreamCensus(3, CensusOptions{Workers: 4, Orbits: true}, nil)
			if err != nil {
				b.Fatal(err)
			}
			check(b, rep.Summary)
			if rep.Summary.Orbits != 40 {
				b.Fatalf("orbits = %d, want 40", rep.Summary.Orbits)
			}
		}
	})
}

// BenchmarkOrbitEnumerate prices canonical-representative enumeration:
// the stabilizer-aware generator (lex-leader pruning DFS, cost
// output-sensitive in the number of orbits) against the filter-based
// reference scan that visits every raw index. n=4 covers the full
// domain; at n=5 both sweep the same mid-domain raw window of 2^18
// indices — the regime where the filter pays n!·(bits/8) table reads
// per skipped index while the generator jumps straight between the
// canonical representatives.
func BenchmarkOrbitEnumerate(b *testing.B) {
	o4 := adversary.NewOrbits(4)
	o5 := adversary.NewOrbits(5)
	const n5lo, n5hi = uint64(1)<<30 + 12345, uint64(1)<<30 + 12345 + 1<<18
	count := func(b *testing.B, want uint64, enumerate func(f func(idx, size uint64) bool)) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			var reps uint64
			enumerate(func(idx, size uint64) bool {
				reps++
				return true
			})
			if reps != want {
				b.Fatalf("enumerated %d representatives, want %d", reps, want)
			}
		}
	}
	// The n=4 domain holds 1992 orbits; the n=5 window was counted once
	// by both paths (they are pinned equal by the adversary tests).
	var n5want uint64
	o5.ForEachCanonicalFrom(n5lo, func(idx, size uint64) bool {
		if idx >= n5hi {
			return false
		}
		n5want++
		return true
	})
	b.Run("generator/n=4", func(b *testing.B) {
		count(b, 1992, func(f func(idx, size uint64) bool) {
			o4.ForEachCanonicalFrom(0, f)
		})
	})
	b.Run("filter/n=4", func(b *testing.B) {
		count(b, 1992, func(f func(idx, size uint64) bool) {
			o4.ForEachRepresentative(f)
		})
	})
	b.Run("generator/n=5-window", func(b *testing.B) {
		count(b, n5want, func(f func(idx, size uint64) bool) {
			o5.ForEachCanonicalFrom(n5lo, func(idx, size uint64) bool {
				if idx >= n5hi {
					return false
				}
				return f(idx, size)
			})
		})
	})
	b.Run("filter/n=5-window", func(b *testing.B) {
		if testing.Short() {
			b.Skip("full-scan reference window is seconds per op; run without -short")
		}
		count(b, n5want, func(f func(idx, size uint64) bool) {
			for idx := n5lo; idx < n5hi; idx++ {
				canon, size := o5.Canonical(idx)
				if canon != idx {
					continue
				}
				if !f(idx, size) {
					return
				}
			}
		})
	})
}

// BenchmarkSolveTowerEviction measures the tower cache under a byte
// budget: three distinct R_A towers cycled through a budget that holds
// roughly one, so every acquire rebuilds (the eviction worst case),
// against the unbounded cache where every acquire after the first is a
// hit. The gap prices LRU eviction for budget tuning on long campaigns.
func BenchmarkSolveTowerEviction(b *testing.B) {
	u := chromatic.NewUniverse(3)
	advs := []*adversary.Adversary{
		adversary.TResilient(3, 1),
		adversary.KObstructionFree(3, 1),
		adversary.KObstructionFree(3, 2),
	}
	var ras []*affine.Task
	var budget int64
	for _, a := range advs {
		ra, err := affine.BuildRAForAdversary(u, a, affine.DefaultVariant)
		if err != nil {
			b.Fatal(err)
		}
		ras = append(ras, ra)
	}
	task := tasks.KSetConsensus(3, 2)
	// Budget: what one extended tower occupies (measured, not guessed).
	{
		probe := chromatic.NewTowerCache()
		if _, err := solver.SolveAffineWith(task, ras[0], 1, solver.Options{Cache: probe}); err != nil {
			b.Fatal(err)
		}
		budget = probe.Snapshot().Bytes + 1
	}
	run := func(b *testing.B, cache *chromatic.TowerCache) {
		for i := 0; i < b.N; i++ {
			ra := ras[i%len(ras)]
			res, err := solver.SolveAffineWith(task, ra, 1, solver.Options{Cache: cache})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Solvable {
				b.Fatal("2-set consensus should be solvable here")
			}
		}
	}
	b.Run("budgeted-evicting", func(b *testing.B) {
		run(b, chromatic.NewTowerCacheWithBudget(budget))
	})
	b.Run("unbounded", func(b *testing.B) {
		run(b, chromatic.NewTowerCache())
	})
}
