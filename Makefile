GO ?= go

# Package scope for test/bench targets, e.g. `make bench PKG=./internal/chromatic`.
PKG ?= ./...

# Hot paths gated by the CI bench-track job (>20% ns/op, allocs/op, or
# custom-metric — e.g. serve p99 — regressions fail).
BENCH_TRACK ?= ApplyAffine|Solve|Census|Orbit|Serve

.PHONY: all build test race bench bench-track fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test $(PKG)

race:
	$(GO) test -race $(PKG)

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -short -benchmem $(PKG)

bench-track:
	$(GO) test -run '^$$' -bench '$(BENCH_TRACK)' -benchtime 1s -short -benchmem $(PKG)

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build vet fmt test
