GO ?= go

.PHONY: all build test race bench fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -short ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build vet fmt test
